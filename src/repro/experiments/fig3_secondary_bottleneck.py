"""Figure 3: fairness with a secondary bottleneck after the limiter.

Paper setup: 7.5 Mbps shared fairly across 4 flows with different CC
protocols, followed by an 8.5 Mbps hop (a RAN-like link barely above the
enforced rate).  PQP's huge phantom queues (sized O(BDP^2) at the maximum
RTT so one queue alone can still enforce the rate, §3.5) let ramping flows
burst far above 7.5 Mbps; the bursts queue and drop at the secondary
bottleneck, degrading short-timescale fairness (3a).  BC-PQP clips the
bursts at the limiter, so the policy survives the second hop (3b).

Two slots run on-off flows so fresh slow starts keep arriving mid-run —
the regime where burst control matters.  Reported per scheme: mean and
tail of the per-window Jain index, drops at the secondary hop, and mean
per-flow throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import (
    AggregateConfig,
    ResultCache,
    print_table,
    run_aggregates,
)
from repro.metrics.fairness import jain_index
from repro.metrics.stats import percentile
from repro.scenario import BottleneckSpec
from repro.units import MSS, mbps, ms, to_mbps
from repro.workload.spec import FlowSpec, OnOffSpec


@dataclass
class Config:
    """Figure 3 parameters."""

    rate: float = mbps(7.5)
    bottleneck_rate: float = mbps(8.5)
    bottleneck_buffer_packets: int = 25
    ccs: tuple[str, ...] = ("reno", "cubic", "bbr", "vegas")
    rtts: tuple[float, ...] = (ms(20), ms(30), ms(40), ms(50))
    #: Queues are sized for the worst-case (max) RTT, per §3.5's question
    #: "should each queue be sized ... even when only one queue is active?"
    sizing_rtt: float = ms(100)
    #: Slots >= this index run on-off flows (fresh slow starts mid-run).
    first_onoff_slot: int = 2
    onoff_burst_packets: float = 600
    onoff_off_time: float = 0.8
    fairness_window: float = 0.5
    horizon: float = 30.0
    warmup: float = 10.0
    seed: int = 1


@dataclass
class Result:
    """Per-scheme fairness and burst-damage measurements."""

    mean_window_fairness: dict[str, float] = field(default_factory=dict)
    p10_window_fairness: dict[str, float] = field(default_factory=dict)
    per_flow_mbps: dict[str, dict[int, float]] = field(default_factory=dict)
    bottleneck_drops: dict[str, int] = field(default_factory=dict)


def _specs(config: Config) -> list[FlowSpec]:
    specs = []
    for i, (cc, rtt) in enumerate(zip(config.ccs, config.rtts)):
        on_off = None
        if i >= config.first_onoff_slot:
            on_off = OnOffSpec(
                burst_packets_mean=config.onoff_burst_packets,
                off_time_mean=config.onoff_off_time,
            )
        specs.append(
            FlowSpec(slot=i, cc=cc, rtt=rtt, start=2.0 * i, on_off=on_off)
        )
    return specs


def _window_fairness(agg, config: Config) -> list[float]:
    slots = agg.slot_series
    if not slots:
        return []
    n_windows = max(len(s.values) for s in slots.values())
    jains = []
    for w in range(n_windows):
        vals = [
            slots[i].values[w] if i in slots and w < len(slots[i].values)
            else 0.0
            for i in range(len(config.ccs))
        ]
        if sum(vals) > 0:
            jains.append(jain_index(vals))
    return jains


_SCHEMES = ("pqp", "bcpqp")


def grid(config: Config) -> list[AggregateConfig]:
    """PQP vs BC-PQP over the same bottlenecked workload."""
    specs = tuple(_specs(config))
    bottleneck = BottleneckSpec(
        rate=config.bottleneck_rate,
        buffer_bytes=config.bottleneck_buffer_packets * MSS,
    )
    return [
        AggregateConfig(
            scheme=scheme,
            specs=specs,
            rate=config.rate,
            max_rtt=config.sizing_rtt,
            horizon=config.horizon,
            warmup=config.warmup,
            seed=config.seed,
            bottleneck=bottleneck,
        )
        for scheme in _SCHEMES
    ]


def run(
    config: Config | None = None,
    *,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> Result:
    """Compare PQP and BC-PQP across the secondary bottleneck."""
    config = config or Config()
    result = Result()
    outcomes = run_aggregates(grid(config), jobs=jobs, cache=cache)
    for scheme, agg in zip(_SCHEMES, outcomes):
        jains = _window_fairness(agg, config)
        result.mean_window_fairness[scheme] = (
            sum(jains) / len(jains) if jains else 0.0
        )
        result.p10_window_fairness[scheme] = (
            percentile(jains, 10) if jains else 0.0
        )
        result.per_flow_mbps[scheme] = {
            slot: to_mbps(series.mean())
            for slot, series in sorted(agg.slot_series.items())
        }
        result.bottleneck_drops[scheme] = agg.bottleneck_drops
    return result


def main(
    config: Config | None = None,
    *,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> Result:
    """Print the Figure 3 comparison."""
    config = config or Config()
    result = run(config, jobs=jobs, cache=cache)
    print(f"Figure 3: {to_mbps(config.rate):.1f} Mbps fair-shared across 4 "
          f"CCs, {to_mbps(config.bottleneck_rate):.1f} Mbps secondary "
          f"bottleneck")
    rows = []
    for scheme in ("pqp", "bcpqp"):
        flows = result.per_flow_mbps[scheme]
        rows.append([
            scheme,
            f"{result.mean_window_fairness[scheme]:.3f}",
            f"{result.p10_window_fairness[scheme]:.3f}",
            str(result.bottleneck_drops[scheme]),
            " ".join(f"{flows.get(i, 0.0):.2f}"
                     for i in range(len(config.ccs))),
        ])
    print_table(
        ["scheme", "window jain (mean)", "window jain (p10)",
         "2nd-hop drops", "per-flow Mbps"],
        rows,
    )
    return result


if __name__ == "__main__":
    main()
