"""Figure 9 (Appendix B): one video stream's throughput over time.

A BBR-driven (YouTube-like) video shares a 3 Mbps enforced rate with other
traffic under each scheme.  Through a plain policer the BBR video hogs most
of the bandwidth; through (single-queue or DRR) shapers it yields — BBR and
the ABR controller both back off under queueing delay; BC-PQP holds it at
its fair share without queueing delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cc.endpoint import FlowDemux
from repro.experiments.common import ResultCache, print_table, run_cells
from repro.metrics.series import TimeSeries
from repro.metrics.throughput import per_slot_throughput_series
from repro.net.packet import FlowId
from repro.net.trace import Trace
from repro.schemes import make_limiter
from repro.sim.simulator import Simulator
from repro.units import mbps, ms, to_mbps
from repro.wiring import wire_flow
from repro.workload.video import VideoConfig, VideoSession

SCHEMES = ("policer", "shaper-fifo", "shaper", "bcpqp")


@dataclass
class Config:
    """Figure 9 parameters."""

    rate: float = mbps(3)
    rtt: float = ms(40)
    chunks: int = 25
    horizon: float = 150.0
    window: float = 1.0
    seed: int = 1


@dataclass
class Result:
    """Per-scheme video/cross-traffic series and summary shares."""

    video_series: dict[str, TimeSeries] = field(default_factory=dict)
    video_share: dict[str, float] = field(default_factory=dict)
    rebuffer_seconds: dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class SchemeCell:
    """One Figure 9 simulation: a scheme enforcing the video/bulk mix."""

    scheme: str
    config: Config


def simulate_scheme_cell(
    cell: SchemeCell,
) -> tuple[TimeSeries, float, float]:
    """Worker entry: (video series, video share, rebuffer seconds)."""
    config = cell.config
    sim = Simulator()
    limiter = make_limiter(sim, cell.scheme, rate=config.rate, num_queues=2,
                           max_rtt=config.rtt)
    demux = FlowDemux()
    trace = Trace(sim, demux, data_only=True)
    limiter.connect(trace)
    video = VideoSession(
        sim, ingress=limiter, demux=demux, slot=0,
        config=VideoConfig(total_chunks=config.chunks, cc="bbr",
                           rtt=config.rtt))
    wire_flow(sim, FlowId(0, 1, 0), cc="cubic", rtt=config.rtt,
              ingress=limiter, demux=demux, packets=None, start=0.0)
    sim.run(until=config.horizon)
    video_end = max(
        (t for t, f in zip(trace.times, trace.flow_ids) if f.slot == 0),
        default=config.horizon,
    )
    slots = per_slot_throughput_series(
        trace, window=config.window, start=0.0,
        end=max(video_end, 10.0))
    video_series = slots.get(0, TimeSeries())
    other_series = slots.get(1, TimeSeries())
    video_total = sum(video_series.values)
    other_total = sum(other_series.values)
    denom = video_total + other_total
    share = video_total / denom if denom else 0.0
    return video_series, share, video.stats.rebuffer_seconds


def grid(config: Config) -> list[SchemeCell]:
    """One cell per enforcement scheme."""
    return [SchemeCell(scheme=scheme, config=config) for scheme in SCHEMES]


def run(
    config: Config | None = None,
    *,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> Result:
    """Run the video-vs-cross-traffic time series for each scheme."""
    config = config or Config()
    result = Result()
    cells = grid(config)
    outcomes = run_cells(simulate_scheme_cell, cells, jobs=jobs, cache=cache)
    for cell, (series, share, rebuffer) in zip(cells, outcomes):
        result.video_series[cell.scheme] = series
        result.video_share[cell.scheme] = share
        result.rebuffer_seconds[cell.scheme] = rebuffer
    return result


def main(
    config: Config | None = None,
    *,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> Result:
    """Print the Figure 9 summary plus a coarse time series."""
    config = config or Config()
    result = run(config, jobs=jobs, cache=cache)
    print("Figure 9: BBR video vs cross traffic at 3 Mbps")
    print_table(
        ["scheme", "video share", "rebuffer s"],
        [
            [s, f"{result.video_share[s]:.3f}",
             f"{result.rebuffer_seconds[s]:.1f}"]
            for s in SCHEMES
        ],
    )
    print()
    print("Video throughput (Mbps), 10 s buckets:")
    for scheme in SCHEMES:
        series = result.video_series[scheme]
        buckets = []
        for start in range(0, int(config.horizon), 10):
            vals = [v for t, v in series if start <= t < start + 10]
            buckets.append(sum(vals) / len(vals) if vals else 0.0)
        print(f"  {scheme:12s} " +
              " ".join(f"{to_mbps(b):4.1f}" for b in buckets))
    return result


if __name__ == "__main__":
    main()
