"""Figure 4: aggregate rate enforcement across schemes (§6.1).

The §6.1 workload (a mix of homogeneous/heterogeneous, backlogged/on-off
aggregates) is enforced at several rates by each scheme.  Reported, per
scheme:

* **4a/4b** — distribution of 250 ms aggregate throughput normalized by
  the enforced rate (body percentiles and the burst tail);
* **4c** — mean of non-zero normalized throughput measurements;
* **4d** — packet drop rate at each enforced rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import (
    AggregateConfig,
    ResultCache,
    print_table,
    run_aggregates,
)
from repro.metrics.stats import percentile
from repro.units import mbps, to_mbps
from repro.workload.aggregates import Section61Config, make_section61_aggregates

#: Schemes compared in §6.1.
SCHEMES = ("shaper", "policer", "policer+", "fairpolicer", "bcpqp")


@dataclass
class Config:
    """Scaled-down §6.1 (paper: 100 aggregates, rates up to 100 Mbps,
    multi-minute runs).  ``scale`` multiplies aggregate count; rates can be
    extended via ``workload.rates``."""

    workload: Section61Config = field(default_factory=lambda: Section61Config(
        num_aggregates=9,
        rates=(mbps(1.5), mbps(7.5), mbps(25.0)),
        flows_per_aggregate=4,
        horizon=12.0,
        seed=7,
    ))
    warmup: float = 3.0
    schemes: tuple[str, ...] = SCHEMES


@dataclass
class SchemeSummary:
    """Figure 4's per-scheme numbers."""

    normalized_samples: list[float] = field(default_factory=list)
    fairness_samples: list[float] = field(default_factory=list)
    drop_rate_by_rate: dict[float, float] = field(default_factory=dict)
    mean_normalized: float = 0.0
    p50: float = 0.0
    p99: float = 0.0
    peak: float = 0.0


def grid(config: Config) -> list[AggregateConfig]:
    """The (scheme x aggregate) sweep grid as runner configs."""
    aggregates = make_section61_aggregates(config.workload)
    return [
        AggregateConfig(
            scheme=scheme,
            specs=agg_spec.flows,
            rate=agg_spec.rate,
            max_rtt=agg_spec.max_rtt,
            horizon=config.workload.horizon,
            warmup=config.warmup,
            seed=config.workload.seed + agg_spec.aggregate_id,
        )
        for scheme in config.schemes
        for agg_spec in aggregates
    ]


def run(
    config: Config | None = None,
    *,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> dict[str, SchemeSummary]:
    """Run every aggregate under every scheme; aggregate the measurements."""
    config = config or Config()
    outcomes = iter(run_aggregates(grid(config), jobs=jobs, cache=cache))
    aggregates = make_section61_aggregates(config.workload)
    results: dict[str, SchemeSummary] = {}
    for scheme in config.schemes:
        summary = SchemeSummary()
        drops: dict[float, list[float]] = {}
        for agg_spec in aggregates:
            agg = next(outcomes)
            summary.normalized_samples.extend(
                v for v in agg.normalized_series
            )
            summary.fairness_samples.append(agg.fairness)
            drops.setdefault(agg_spec.rate, []).append(agg.drop_rate)
        nonzero = [v for v in summary.normalized_samples if v > 0]
        if nonzero:
            summary.mean_normalized = sum(nonzero) / len(nonzero)
            summary.p50 = percentile(nonzero, 50)
            summary.p99 = percentile(nonzero, 99)
            summary.peak = max(nonzero)
        summary.drop_rate_by_rate = {
            rate: sum(vals) / len(vals) for rate, vals in drops.items()
        }
        results[scheme] = summary
    return results


def main(
    config: Config | None = None,
    *,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> dict[str, SchemeSummary]:
    """Print Figure 4's tables (4a/4b distribution, 4c means, 4d drops)."""
    config = config or Config()
    results = run(config, jobs=jobs, cache=cache)
    print("Figure 4a/4b: normalized 250 ms aggregate throughput")
    print_table(
        ["scheme", "p50", "p99 (burst tail)", "max"],
        [
            [s, f"{r.p50:.3f}", f"{r.p99:.3f}", f"{r.peak:.2f}"]
            for s, r in results.items()
        ],
    )
    print()
    print("Figure 4c: mean normalized aggregate throughput")
    print_table(
        ["scheme", "mean (xr)"],
        [[s, f"{r.mean_normalized:.3f}"] for s, r in results.items()],
    )
    print()
    print("Figure 4d: drop rate by enforced rate")
    rates = sorted(next(iter(results.values())).drop_rate_by_rate)
    print_table(
        ["scheme"] + [f"{to_mbps(r):g} Mbps" for r in rates],
        [
            [s] + [f"{summary.drop_rate_by_rate.get(r, 0.0):.3f}"
                   for r in rates]
            for s, summary in results.items()
        ],
    )
    return results


if __name__ == "__main__":
    main()
