"""Figure 4 benchmark: §6.1 aggregate rate enforcement across schemes."""

from conftest import run_once

from repro.experiments import fig4_rate_enforcement
from repro.units import mbps
from repro.workload.aggregates import Section61Config


def test_fig4_rate_enforcement(benchmark):
    config = fig4_rate_enforcement.Config(
        workload=Section61Config(
            num_aggregates=6,
            rates=(mbps(1.5), mbps(7.5), mbps(25.0)),
            flows_per_aggregate=4,
            horizon=10.0,
            seed=7,
        ),
        warmup=3.0,
    )
    results = run_once(benchmark, fig4_rate_enforcement.run, config)

    # 4a: the shaper's instantaneous rate is the tightest; every scheme
    # keeps the median close to the enforced rate.
    assert results["shaper"].p99 < 1.05
    for scheme in ("shaper", "policer", "policer+", "bcpqp"):
        assert 0.9 < results[scheme].p50 <= 1.05

    # 4b: Policer+ and FP have the long burst tails; BC-PQP's tail is
    # far smaller.
    assert results["policer+"].peak > 1.5
    assert results["bcpqp"].peak < results["policer+"].peak
    assert results["bcpqp"].peak < results["fairpolicer"].peak

    # 4c: average enforcement within ~10% of the rate for all schemes.
    for scheme, summary in results.items():
        assert 0.85 < summary.mean_normalized < 1.1, scheme

    # 4d: drops fall as the BDP grows (rate increases) for the policer.
    drops = results["policer"].drop_rate_by_rate
    assert drops[mbps(1.5)] > drops[mbps(25.0)]
