"""Machine-readable performance report: ``python benchmarks/report.py``.

Writes ``BENCH_fig5.json`` next to this file (or to ``--output``) with
three sections:

* ``modeled_cycles_per_packet`` — the Figure 5 metric: the operation-level
  cost model accumulated over a scaled-down §6.1 run, per scheme;
* ``hot_path`` — real wall-clock seconds per packet through each
  limiter's ``receive()`` hot path (median of ``--rounds`` batches);
* ``simulator`` — event-loop throughput (events/sec) on the three
  ``bench_sim_core`` workloads.

The JSON is the stable interface for tracking this repository's
performance over time; the pytest-benchmark suite asserts the qualitative
shapes, this report records the raw numbers.
"""

from __future__ import annotations

import argparse
import itertools
import json
import platform
import statistics
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO_ROOT / "src"))
sys.path.insert(0, str(_REPO_ROOT / "benchmarks"))

import bench_sim_core  # noqa: E402

from repro.experiments import fig5_efficiency  # noqa: E402
from repro.net.packet import FlowId, Packet  # noqa: E402
from repro.net.sink import NullSink  # noqa: E402
from repro.schemes import make_limiter  # noqa: E402
from repro.sim.simulator import Simulator  # noqa: E402
from repro.units import mbps, ms  # noqa: E402

HOT_PATH_SCHEMES = ("policer", "fairpolicer", "pqp", "bcpqp", "shaper")
BATCH = 1000


def modeled_cycles() -> dict[str, float]:
    """Figure 5's cost-model numbers from a scaled-down run."""
    result = fig5_efficiency.run(fig5_efficiency.Config(horizon=8.0, warmup=2.0))
    return {s: round(c, 2) for s, c in result.cycles_per_packet.items()}


def _hot_path_batch(scheme: str):
    """A closure pushing one batch of packets through ``scheme``."""
    sim = Simulator()
    limiter = make_limiter(sim, scheme, rate=mbps(50), num_queues=4,
                           max_rtt=ms(50))
    limiter.connect(NullSink())
    flows = [FlowId(0, i) for i in range(4)]
    counter = itertools.count()
    is_shaper = scheme == "shaper"

    def process_batch() -> None:
        base = next(counter) * BATCH
        for i in range(BATCH):
            if not is_shaper:
                sim._now = (base + i) * 2e-5  # 50k pkt/s arrival clock
            limiter.receive(Packet.data(flows[i % 4], base + i, sim.now))
        if is_shaper:
            sim.run(until=sim.now + 0.02)

    return process_batch


def hot_path_seconds_per_packet(rounds: int) -> dict[str, float]:
    """Median wall seconds per packet through each limiter."""
    out = {}
    for scheme in HOT_PATH_SCHEMES:
        batch = _hot_path_batch(scheme)
        batch()  # warm up caches and lazy construction
        samples = []
        for _ in range(rounds):
            start = time.perf_counter()
            batch()
            samples.append((time.perf_counter() - start) / BATCH)
        out[scheme] = statistics.median(samples)
    return out


def simulator_events_per_second(rounds: int) -> dict[str, float]:
    """Median events/sec for the event-loop microbenchmark workloads."""
    workloads = {
        "timer_chain": bench_sim_core.run_timer_chain,
        "timer_fan": bench_sim_core.run_timer_fan,
        "cancel_mix": bench_sim_core.run_cancel_mix,
    }
    out = {}
    for name, fn in workloads.items():
        fn()  # warm-up
        samples = []
        for _ in range(rounds):
            start = time.perf_counter()
            events = fn()
            samples.append(events / (time.perf_counter() - start))
        out[name] = round(statistics.median(samples))
    return out


def build_report(rounds: int) -> dict:
    return {
        "schema": "repro-bench/1",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "rounds": rounds,
        "modeled_cycles_per_packet": modeled_cycles(),
        "hot_path": {
            "unit": "seconds/packet",
            "batch_packets": BATCH,
            "schemes": hot_path_seconds_per_packet(rounds),
        },
        "simulator": {
            "unit": "events/second",
            "workloads": simulator_events_per_second(rounds),
        },
    }


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", "-o",
        default=str(Path(__file__).parent / "BENCH_fig5.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--rounds", type=int, default=5,
        help="timing rounds per measurement (median is reported)",
    )
    parser.add_argument(
        "--baseline", metavar="JSON", default=None,
        help="a previous report to embed under 'baseline', with "
        "events/sec speedup ratios computed against it",
    )
    args = parser.parse_args(argv)
    if args.rounds < 1:
        parser.error("--rounds must be at least 1")
    report = build_report(args.rounds)
    if args.baseline:
        baseline = json.loads(Path(args.baseline).read_text())
        report["baseline"] = baseline
        old = baseline.get("simulator", {}).get("workloads", {})
        new = report["simulator"]["workloads"]
        report["simulator"]["speedup_vs_baseline"] = {
            name: round(new[name] / old[name], 3)
            for name in new if old.get(name)
        }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    for scheme, cycles in report["modeled_cycles_per_packet"].items():
        print(f"  cycles/pkt {scheme:12s} {cycles:8.1f}")
    for scheme, secs in report["hot_path"]["schemes"].items():
        print(f"  hot path   {scheme:12s} {secs * 1e6:8.2f} us/pkt")
    for name, eps in report["simulator"]["workloads"].items():
        print(f"  sim        {name:12s} {eps:8.0f} events/s")


if __name__ == "__main__":
    main()
