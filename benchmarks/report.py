"""Machine-readable performance report: ``python benchmarks/report.py``.

Writes ``BENCH_fig5.json`` next to this file (or to ``--output``) with
three sections:

* ``modeled_cycles_per_packet`` — the Figure 5 metric: the operation-level
  cost model accumulated over a scaled-down §6.1 run, per scheme;
* ``hot_path`` — real wall-clock seconds per packet through each
  limiter's ``receive()`` hot path (median of ``--rounds`` batches);
* ``simulator`` — event-loop throughput (events/sec) on the three
  ``bench_sim_core`` workloads.

A second file, ``BENCH_scaling.json``, records the ``scaling`` section:
wall seconds/packet and modeled cycles/packet for PQP and BC-PQP at
N ∈ {1, 10, 100, 1000, 10000} aggregates — the Figure 5 flatness claim
applied to our own hot path.

A third file, ``BENCH_eventloop.json``, records the event-engine
section: each fig5 saturated cell run end-to-end with the simulator's
own counters (events/packet, heap pushes/packet, peak heap size,
cancelled-backlog high-water mark) plus wall us/packet, and the ratios
against the pinned pre-overhaul engine (``PRE_PR_EVENTLOOP``).

A fourth file, ``BENCH_batch.json``, records the batched-packet-path
section: each fig5 saturated cell run under the per-packet engine
(``batch=1``) and the unbounded batched engine, measured *interleaved*
with the per-engine minimum reported (robust to background load), plus
the speedup against the committed pre-batching ``BENCH_eventloop.json``
reference clocks (``REFERENCE_UNBATCHED``).

A fifth file, ``BENCH_impair.json``, records the impairment-machinery
section (:mod:`repro.net.impair`): one bcpqp aggregate run three ways —
clean (``impair=None``), with an all-disabled ``ImpairmentSpec()`` (which
must produce a byte-identical outcome: the disabled machinery constructs
nothing and draws no randomness), and with loss+jitter actually enabled
(informational cost of the gates).  Clean and disabled cells are timed
interleaved with per-side minimums; ``--check`` gates the
disabled/clean wall ratio at ``IMPAIR_MAX_OVERHEAD`` (1.05) and fails
hard if the outcomes differ at all.

A sixth file, ``BENCH_churn.json``, records the live-reconfiguration
section (:mod:`repro.churn`): one bcpqp aggregate run clean
(``churn=None``) and with an empty ``ChurnPlan()`` (which must produce a
byte-identical outcome: the empty plan constructs no driver and
schedules nothing), timed interleaved with per-side minimums and gated
at ``CHURN_MAX_OVERHEAD`` (1.05); an informational churned cell (a
drawn plan actually mutating the limiter mid-run); and an
``apply_update`` throughput microbench — transactional weight updates
committed against a loaded limiter, gated at
``CHURN_MIN_UPDATES_PER_S`` applied/sec.

A seventh file, ``BENCH_fleet.json``, records the sharded-fleet section
(:mod:`repro.fleet`): full end-to-end fleet runs (TCP endpoints, a
middlebox hosting one limiter per aggregate, merged columnar metrics)
at N=1000 unsharded (the baseline), N=1000 over 4 shards (whose merged
digest must be byte-identical to the baseline's — the shard-count
invariance gate), and N=4000 over 4 shards (whose summed-CPU us/packet
is gated against the baseline).  A ``headline`` subsection carries the
big committed run (10^5 aggregates over 100 shards) which ``--check``
consistency-checks but does not re-run; regenerate it with
``--fleet-headline``.

``--check`` runs only those sections and exits non-zero if (a)
seconds/packet at N=1000 exceeds ``--check-multiple`` (default 3.0)
times the N=10 value, or N=10000 exceeds the same multiple of N=100 —
the guard for the virtual-time drain staying O(log N) — or the churn
gates fail: the empty-plan outcome must equal the clean outcome
byte-for-byte at <= 1.05x its wall clock, and update throughput must
hold the floor — or (b) the
event-engine gates fail: heap pushes/packet must stay >= 1.5x below the
pre-overhaul engine on bcpqp (>= 1.3x elsewhere), events/packet and
peak heap must not creep back up, and bcpqp wall us/packet must stay
>= 1.3x faster than the pinned pre-overhaul reference — or (c) the
batch gates fail: bcpqp batched us/packet must stay >=
--check-min-speedup (default 2.0) times faster than the committed
pre-batching reference clock *and* under the ``BATCH_BCPQP_US_MAX``
absolute ceiling (24 us/pkt) — or (d) the impairment gates fail: the
disabled-spec outcome must equal the clean outcome byte-for-byte and
cost at most 5% extra wall clock — or (e) the fleet gates fail: the sharded
N=1000 digest must equal the unsharded baseline's, shard-scaling
efficiency (baseline us/packet over sharded-4x-fleet us/packet, both in
summed-CPU terms) must stay >= --check-min-efficiency (default 0.7),
and the committed headline run's us/packet must stay within
``FLEET_US_MAX_MULTIPLE`` (2x) of the fresh baseline.

The JSON is the stable interface for tracking this repository's
performance over time; the pytest-benchmark suite asserts the qualitative
shapes, this report records the raw numbers.
"""

from __future__ import annotations

import argparse
import itertools
import json
import platform
import random
import statistics
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO_ROOT / "src"))
sys.path.insert(0, str(_REPO_ROOT / "benchmarks"))

import bench_sim_core  # noqa: E402

from repro.churn import ChurnPlan, PolicyUpdate, draw_plan  # noqa: E402
from repro.experiments import fig5_efficiency  # noqa: E402
from repro.experiments.fleet_scale import as_json as fleet_cell_json  # noqa: E402
from repro.fleet import FleetSpec, run_fleet  # noqa: E402
from repro.net.impair import ImpairmentSpec  # noqa: E402
from repro.net.packet import FlowId, Packet  # noqa: E402
from repro.net.sink import NullSink  # noqa: E402
from repro.runner.aggregate import AggregateConfig, simulate_aggregate  # noqa: E402
from repro.runner.supervisor import session_stats  # noqa: E402
from repro.workload.spec import FlowSpec  # noqa: E402
from repro.schemes import make_limiter  # noqa: E402
from repro.sim.simulator import Simulator  # noqa: E402
from repro.units import mbps, ms  # noqa: E402

HOT_PATH_SCHEMES = ("policer", "fairpolicer", "pqp", "bcpqp", "shaper")
BATCH = 1000

#: The scaling sweep: phantom schemes across aggregate counts.
SCALING_SCHEMES = ("pqp", "bcpqp")
SCALING_NS = (1, 10, 100, 1000, 10000)

#: Pre-overhaul engine metrics on the fig5 saturated workload (default
#: 12 s horizon), measured at the commit preceding the event-engine
#: overhaul on the reference dev box.  The per-packet counters are
#: machine-independent (deterministic simulation); ``us_per_packet`` is
#: the reference wall clock the speedup ratio is computed against.
PRE_PR_EVENTLOOP = {
    "bcpqp": {
        "arrived_packets": 35550,
        "events_per_packet": 2.2632,
        "heap_pushes_per_packet": 3.6866,
        "peak_heap_size": 856,
        "us_per_packet": 123.8,
    },
    "pqp": {
        "arrived_packets": 40324,
        "events_per_packet": 2.1983,
        "heap_pushes_per_packet": 3.5110,
        "peak_heap_size": 2350,
        "us_per_packet": 145.2,
    },
    "shaper": {
        "arrived_packets": 28250,
        "events_per_packet": 2.9604,
        "heap_pushes_per_packet": 4.7295,
        "peak_heap_size": 867,
        "us_per_packet": 257.6,
    },
    "policer": {
        "arrived_packets": 37827,
        "events_per_packet": 2.3015,
        "heap_pushes_per_packet": 3.5965,
        "peak_heap_size": 654,
        "us_per_packet": 147.2,
    },
}


#: Pre-batching us/packet on the fig5 saturated cells — the committed
#: ``BENCH_eventloop.json`` figures at the commit preceding the batched
#: packet path, measured on the reference dev box with the then-current
#: per-packet delivery engine.  The batch section's headline speedup is
#: computed against these clocks (the "47 us/pkt" the batching work set
#: out to halve); the same-machine batch=1 ratio is reported alongside
#: so a faster or slower box is visible rather than silently flattering
#: the ratio.
REFERENCE_UNBATCHED = {
    "bcpqp": 47.22,
    "pqp": 47.28,
    "shaper": 60.36,
    "policer": 36.75,
}

#: Absolute ceiling for bcpqp under the batched engine (the issue's
#: "47 -> <= 24 us/pkt" target), enforced by ``--check`` alongside the
#: relative gate.
BATCH_BCPQP_US_MAX = 24.0

#: Allowed wall-clock ratio of the disabled-``ImpairmentSpec()`` run
#: over the clean ``impair=None`` run.  The disabled path constructs no
#: gates and draws no randomness — its only cost is a couple of ``None``
#: checks at wiring time — so anything past 5% is machinery leaking into
#: the per-packet path.
IMPAIR_MAX_OVERHEAD = 1.05

#: The impairment section's enabled cell: moderate i.i.d. loss plus
#: delay jitter — both per-packet gates on the data path, so the cell
#: prices the *active* machinery, not just its absence.
IMPAIR_ENABLED_SPEC = ImpairmentSpec(loss=0.01, jitter=0.002)

#: Allowed wall-clock ratio of the empty-``ChurnPlan()`` run over the
#: clean ``churn=None`` run.  An empty plan constructs no driver and
#: schedules no timer — anything past 5% is churn machinery leaking
#: into the churn-free path.
CHURN_MAX_OVERHEAD = 1.05

#: Floor on transactional ``apply_update`` throughput (weight updates
#: committed per wall second against a loaded bcpqp limiter).  Each
#: commit settles the drain, rebuilds the GPS engine and re-seeds the
#: virtual clocks; the microbench runs well above 10k/s on the
#: reference box, so 1000/s catches an order-of-magnitude regression
#: without flaking on slow CI.
CHURN_MIN_UPDATES_PER_S = 1000.0

#: The churned cell's plan size (informational cell: a drawn plan
#: actually mutating weights/priorities/capacities mid-run).
CHURN_PLAN_ACTIONS = 40

#: Fleet-section cells (full end-to-end sims: TCP endpoints, middlebox,
#: one limiter per aggregate, merged columnar metrics).  The baseline is
#: unsharded; the invariance cell re-runs the same fleet over 4 shards
#: and must merge to a byte-identical digest; the scaled cell quadruples
#: the population across 4 shards and gates the summed-CPU us/packet.
FLEET_SEED = 1
FLEET_BASELINE = {"aggregates": 1000, "shards": 1}
FLEET_INVARIANCE = {"aggregates": 1000, "shards": 4}
FLEET_SCALED = {"aggregates": 4000, "shards": 4}

#: Shard-scaling efficiency floor: baseline us/packet over the scaled
#: cell's us/packet (both summed-CPU, so the gate is meaningful on a
#: single-core box).  Sharding exists to keep per-packet cost flat as
#: the population grows; 0.7 allows for per-shard bookkeeping overhead
#: without letting a superlinear regression back in.
FLEET_MIN_EFFICIENCY = 0.7

#: The committed headline run's us/packet must stay within this multiple
#: of the fresh N=1000 unsharded baseline (the acceptance bound for the
#: 10^5-aggregate run).
FLEET_US_MAX_MULTIPLE = 2.0


def modeled_cycles() -> dict[str, float]:
    """Figure 5's cost-model numbers from a scaled-down run."""
    result = fig5_efficiency.run(fig5_efficiency.Config(horizon=8.0, warmup=2.0))
    return {s: round(c, 2) for s, c in result.cycles_per_packet.items()}


def _hot_path_batch(scheme: str):
    """A closure pushing one batch of packets through ``scheme``."""
    sim = Simulator()
    limiter = make_limiter(sim, scheme, rate=mbps(50), num_queues=4,
                           max_rtt=ms(50))
    limiter.connect(NullSink())
    flows = [FlowId(0, i) for i in range(4)]
    counter = itertools.count()
    is_shaper = scheme == "shaper"

    def process_batch() -> None:
        base = next(counter) * BATCH
        for i in range(BATCH):
            if not is_shaper:
                sim._now = (base + i) * 2e-5  # 50k pkt/s arrival clock
            limiter.receive(Packet.data(flows[i % 4], base + i, sim.now))
        if is_shaper:
            sim.run(until=sim.now + 0.02)

    return process_batch


def hot_path_seconds_per_packet(rounds: int) -> dict[str, float]:
    """Median wall seconds per packet through each limiter."""
    out = {}
    for scheme in HOT_PATH_SCHEMES:
        batch = _hot_path_batch(scheme)
        batch()  # warm up caches and lazy construction
        samples = []
        for _ in range(rounds):
            start = time.perf_counter()
            batch()
            samples.append((time.perf_counter() - start) / BATCH)
        out[scheme] = statistics.median(samples)
    return out


def _scaling_cell(scheme: str, n: int, rounds: int) -> dict[str, float]:
    """Seconds/packet and modeled cycles/packet at ``n`` aggregates."""
    sim = Simulator()
    limiter = make_limiter(sim, scheme, rate=mbps(50), num_queues=n,
                           max_rtt=ms(50))
    limiter.connect(NullSink())
    flows = [FlowId(0, i) for i in range(n)]
    counter = itertools.count()

    def process_batch() -> None:
        base = next(counter) * BATCH
        for i in range(BATCH):
            sim._now = (base + i) * 2e-5  # 50k pkt/s arrival clock
            limiter.receive(Packet.data(flows[(base + i) % n], base + i,
                                        sim.now))

    process_batch()  # warm up: queues activate, share caches populate
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        process_batch()
        samples.append((time.perf_counter() - start) / BATCH)
    return {
        "seconds_per_packet": statistics.median(samples),
        "modeled_cycles_per_packet": round(
            limiter.cost.cycles_per_packet(limiter.stats.arrived_packets), 2
        ),
    }


def scaling_section(rounds: int, ns: tuple[int, ...] = SCALING_NS) -> dict:
    """The drain-scalability sweep: PQP/BC-PQP across aggregate counts."""
    schemes = {
        scheme: {str(n): _scaling_cell(scheme, n, rounds) for n in ns}
        for scheme in SCALING_SCHEMES
    }
    return {
        "unit": "seconds/packet, modeled cycles/packet",
        "batch_packets": BATCH,
        "aggregates": list(ns),
        "schemes": schemes,
    }


def check_scaling(scaling: dict, multiple: float) -> list[str]:
    """Regression check: seconds/packet across two decades of N.

    Two gates per scheme, each spanning a 100x aggregate-count jump:
    N=1000 vs ``multiple`` x N=10, and N=10000 vs ``multiple`` x N=100.
    """
    failures = []
    for scheme, per_n in scaling["schemes"].items():
        for small, big in (("10", "1000"), ("100", "10000")):
            base = per_n.get(small)
            top = per_n.get(big)
            if base is None or top is None:
                continue
            base_s = base["seconds_per_packet"]
            top_s = top["seconds_per_packet"]
            if top_s > multiple * base_s:
                failures.append(
                    f"{scheme}: {top_s:.3e} s/pkt at N={big} exceeds "
                    f"{multiple}x the N={small} value ({base_s:.3e})"
                )
    return failures


def eventloop_section(horizon: float | None = None) -> dict:
    """The event-engine section: fig5 cells measured by engine counters.

    One run per scheme suffices — every number except ``wall_seconds``
    comes from the deterministic simulation itself, and reading the
    counters afterwards costs the timed run nothing.
    """
    schemes = {}
    for scheme in bench_sim_core.EVENTLOOP_SCHEMES:
        cell = bench_sim_core.run_eventloop_cell(scheme, horizon=horizon)
        pre = PRE_PR_EVENTLOOP.get(scheme)
        if pre is not None and horizon is None:
            cell["heap_push_reduction_vs_pre_pr"] = round(
                pre["heap_pushes_per_packet"] / cell["heap_pushes_per_packet"],
                3,
            )
            cell["speedup_vs_pre_pr"] = round(
                pre["us_per_packet"] / cell["us_per_packet"], 3
            )
        schemes[scheme] = cell
    return {
        "unit": "per-packet engine counters + wall us/packet",
        "workload": "fig5 saturated cells"
        + ("" if horizon is None else f" (horizon={horizon})"),
        "pre_pr_reference": PRE_PR_EVENTLOOP,
        "schemes": schemes,
    }


def check_eventloop(section: dict, *, min_speedup: float = 1.3) -> list[str]:
    """Regression gates for the event-engine overhaul.

    Deterministic gates (exact on any machine): bcpqp heap pushes/packet
    reduced >= 1.5x vs the pre-overhaul engine (>= 1.3x for the other
    schemes), events/packet within 5% of the old engine (soft-timer
    stale wakes may add a little), peak heap at most a quarter of the
    old cancel-bloated depth.  Wall gate (reference-machine clock): bcpqp
    us/packet at least ``min_speedup`` x faster than the pinned pre-PR
    number.
    """
    failures = []
    for scheme, cell in section["schemes"].items():
        pre = PRE_PR_EVENTLOOP.get(scheme)
        if pre is None:
            continue
        floor = 1.5 if scheme == "bcpqp" else 1.3
        push_ratio = pre["heap_pushes_per_packet"] / cell["heap_pushes_per_packet"]
        if push_ratio < floor:
            failures.append(
                f"{scheme}: heap pushes/packet reduced only "
                f"{push_ratio:.3f}x vs pre-overhaul (need >= {floor}x)"
            )
        if cell["events_per_packet"] > 1.05 * pre["events_per_packet"]:
            failures.append(
                f"{scheme}: events/packet {cell['events_per_packet']:.4f} "
                f"regressed past 1.05x the pre-overhaul "
                f"{pre['events_per_packet']:.4f}"
            )
        if cell["peak_heap_size"] > pre["peak_heap_size"] / 4:
            failures.append(
                f"{scheme}: peak heap {cell['peak_heap_size']} above a "
                f"quarter of the pre-overhaul {pre['peak_heap_size']}"
            )
    bcpqp = section["schemes"].get("bcpqp")
    if bcpqp is not None:
        speedup = PRE_PR_EVENTLOOP["bcpqp"]["us_per_packet"] / bcpqp["us_per_packet"]
        if speedup < min_speedup:
            failures.append(
                f"bcpqp: us/packet speedup {speedup:.3f}x vs the pinned "
                f"pre-overhaul reference below the {min_speedup}x gate"
            )
    return failures


def batch_section(rounds: int) -> dict:
    """Batched vs per-packet delivery on the fig5 saturated cells.

    Wall-clock cells are load-sensitive (the same code can vary tens of
    percent under background load), so the two engines are measured
    interleaved — ``batch=1`` then unbounded, ``rounds`` times — and the
    per-engine *minimum* is reported: the minimum is the estimator least
    disturbed by load spikes, and interleaving ensures both engines see
    the same load profile.
    """
    schemes = {}
    for scheme in bench_sim_core.EVENTLOOP_SCHEMES:
        best: dict = {1: None, None: None}
        counters: dict = {}
        for _ in range(rounds):
            for limit in (1, None):
                cell = bench_sim_core.run_eventloop_cell(scheme, batch=limit)
                us = cell["us_per_packet"]
                if best[limit] is None or us < best[limit]:
                    best[limit] = us
                if limit is None:
                    counters = {
                        "batched_deliveries": cell["batched_deliveries"],
                        "inline_advances": cell["inline_advances"],
                        "heap_pushes_per_packet": cell["heap_pushes_per_packet"],
                    }
        reference = REFERENCE_UNBATCHED[scheme]
        schemes[scheme] = {
            "us_per_packet_batch1": round(best[1], 2),
            "us_per_packet_batched": round(best[None], 2),
            "reference_unbatched_us_per_packet": reference,
            "speedup_vs_reference": round(reference / best[None], 3),
            "speedup_same_machine": round(best[1] / best[None], 3),
            **counters,
        }
    return {
        "unit": "wall us/packet (min of interleaved rounds)",
        "workload": "fig5 saturated cells",
        "rounds": rounds,
        "reference": "committed BENCH_eventloop.json at the pre-batching "
        "commit (reference dev box, per-packet delivery)",
        "schemes": schemes,
    }


def check_batch(
    section: dict,
    *,
    min_speedup: float = 2.0,
    bcpqp_max_us: float = BATCH_BCPQP_US_MAX,
) -> list[str]:
    """Acceptance gates for the batched packet path (reference-machine
    wall clocks): bcpqp must be >= ``min_speedup`` x faster than the
    committed pre-batching reference *and* under the absolute
    ``bcpqp_max_us`` ceiling.  Byte-identity between the engines is
    guarded separately (equivalence pins + the differential fuzzer's
    batch tier), not by wall clocks."""
    failures = []
    bcpqp = section["schemes"].get("bcpqp")
    if bcpqp is None:
        return ["bcpqp: batch section missing the gated scheme"]
    if bcpqp["speedup_vs_reference"] < min_speedup:
        failures.append(
            f"bcpqp: batched us/packet speedup "
            f"{bcpqp['speedup_vs_reference']:.3f}x vs the committed "
            f"pre-batching reference below the {min_speedup}x gate"
        )
    if bcpqp["us_per_packet_batched"] > bcpqp_max_us:
        failures.append(
            f"bcpqp: batched {bcpqp['us_per_packet_batched']:.2f} us/packet "
            f"above the {bcpqp_max_us} us absolute ceiling"
        )
    return failures


def _impair_config(impair: ImpairmentSpec | None) -> AggregateConfig:
    """The impair section's workload: one bcpqp aggregate, two flows."""
    return AggregateConfig(
        scheme="bcpqp",
        specs=(
            FlowSpec(slot=0, cc="reno", rtt=0.02),
            FlowSpec(slot=1, cc="cubic", rtt=0.05),
        ),
        rate=mbps(8.0),
        max_rtt=ms(100),
        horizon=4.0,
        warmup=1.0,
        seed=7,
        impair=impair,
    )


def impair_section(rounds: int) -> dict:
    """Impairment-machinery cost: clean vs disabled vs enabled.

    Clean (``impair=None``) and disabled (all-zero ``ImpairmentSpec()``)
    runs are timed interleaved with per-side minimums (same estimator as
    the batch section — robust to background load), and their outcomes
    compared for byte-identity: the disabled spec must wire nothing.
    The enabled cell (loss + jitter) runs once, informationally — its
    clock moves with TCP's loss response, not just gate overhead.
    """
    configs = {
        "clean": _impair_config(None),
        "disabled": _impair_config(ImpairmentSpec()),
    }
    outcomes = {}
    best: dict[str, float | None] = {"clean": None, "disabled": None}
    for _ in range(rounds):
        for name, config in configs.items():
            start = time.perf_counter()
            outcome = simulate_aggregate(config)
            elapsed = time.perf_counter() - start
            if best[name] is None or elapsed < best[name]:
                best[name] = elapsed
            outcomes[name] = outcome
    enabled_start = time.perf_counter()
    enabled = simulate_aggregate(_impair_config(IMPAIR_ENABLED_SPEC))
    enabled_seconds = time.perf_counter() - enabled_start
    identical = outcomes["clean"] == outcomes["disabled"]
    return {
        "unit": "wall seconds per run (min of interleaved rounds)",
        "workload": "bcpqp aggregate, 2 flows, 8 Mbps, 4 s horizon",
        "rounds": rounds,
        "outcomes_identical": identical,
        "clean_seconds": round(best["clean"], 4),
        "disabled_seconds": round(best["disabled"], 4),
        "disabled_overhead_ratio": round(best["disabled"] / best["clean"], 4),
        "enabled": {
            "spec": {"loss": IMPAIR_ENABLED_SPEC.loss,
                     "jitter": IMPAIR_ENABLED_SPEC.jitter},
            "seconds": round(enabled_seconds, 4),
            "drop_rate": round(enabled.drop_rate, 4),
            "arrived_packets": enabled.arrived_packets,
        },
    }


def check_impair(
    section: dict, *, max_overhead: float = IMPAIR_MAX_OVERHEAD
) -> list[str]:
    """Acceptance gates for the impairment machinery.

    Deterministic gate (exact on any machine): the all-disabled spec's
    outcome must be byte-identical to the clean run's.  Wall gate
    (same-machine clocks, both sides measured interleaved in this run):
    the disabled spec may cost at most ``max_overhead`` x the clean run.
    """
    failures = []
    if not section["outcomes_identical"]:
        failures.append(
            "impair: disabled ImpairmentSpec() outcome differs from the "
            "clean impair=None run — disabled machinery is not inert"
        )
    ratio = section["disabled_overhead_ratio"]
    if ratio > max_overhead:
        failures.append(
            f"impair: disabled-spec wall overhead {ratio:.4f}x above the "
            f"{max_overhead}x ceiling (clean {section['clean_seconds']}s, "
            f"disabled {section['disabled_seconds']}s)"
        )
    return failures


def _churn_config(plan: ChurnPlan | None) -> AggregateConfig:
    """The churn section's workload: one bcpqp aggregate, two flows."""
    return AggregateConfig(
        scheme="bcpqp",
        specs=(
            FlowSpec(slot=0, cc="reno", rtt=0.02),
            FlowSpec(slot=1, cc="cubic", rtt=0.05),
        ),
        rate=mbps(8.0),
        max_rtt=ms(100),
        horizon=4.0,
        warmup=1.0,
        seed=7,
        churn=plan,
    )


def _apply_throughput() -> dict:
    """Transactional-update throughput against a loaded limiter.

    Warms a bcpqp limiter with traffic so every commit migrates real
    state (occupied phantoms, live GPS clocks), then times a tight loop
    of alternating weight updates — each one a full validate + settle +
    engine-rebuild + clock-reseed transaction.
    """
    sim = Simulator()
    limiter = make_limiter(sim, "bcpqp", rate=mbps(50), num_queues=4,
                           max_rtt=ms(50))
    limiter.connect(NullSink())
    flows = [FlowId(0, i) for i in range(4)]
    for i in range(2000):
        sim._now = i * 2e-5
        limiter.receive(Packet.data(flows[i % 4], i, sim.now))
    rng = random.Random(7)
    updates = [
        PolicyUpdate(weights=tuple(float(rng.randint(1, 4)) for _ in range(4)))
        for _ in range(16)
    ]
    n = 2000
    start = time.perf_counter()
    for i in range(n):
        sim._now += 1e-5
        limiter.apply_update(updates[i % len(updates)])
    elapsed = time.perf_counter() - start
    return {
        "updates": n,
        "seconds": round(elapsed, 4),
        "updates_per_second": round(n / elapsed, 1),
    }


def churn_section(rounds: int) -> dict:
    """Live-reconfiguration cost: clean vs empty-plan vs churned.

    Clean (``churn=None``) and empty-plan (``ChurnPlan()``) runs are
    timed interleaved with per-side minimums (same estimator as the
    batch section), and their outcomes compared for byte-identity: the
    empty plan must construct no driver and schedule nothing.  The
    churned cell (a drawn plan mutating the limiter mid-run) is
    informational, and the ``apply_update`` microbench prices one
    transactional commit.
    """
    configs = {
        "clean": _churn_config(None),
        "empty_plan": _churn_config(ChurnPlan()),
    }
    outcomes = {}
    best: dict[str, float | None] = {"clean": None, "empty_plan": None}
    for _ in range(rounds):
        for name, config in configs.items():
            start = time.perf_counter()
            outcome = simulate_aggregate(config)
            elapsed = time.perf_counter() - start
            if best[name] is None or elapsed < best[name]:
                best[name] = elapsed
            outcomes[name] = outcome
    plan = draw_plan(
        random.Random(7),
        num_queues=2,
        rate=mbps(8.0),
        horizon=4.0,
        actions=CHURN_PLAN_ACTIONS,
        kinds=("weights", "priorities", "resize", "capacity"),
    )
    churned_start = time.perf_counter()
    churned = simulate_aggregate(_churn_config(plan))
    churned_seconds = time.perf_counter() - churned_start
    identical = outcomes["clean"] == outcomes["empty_plan"]
    return {
        "unit": "wall seconds per run (min of interleaved rounds)",
        "workload": "bcpqp aggregate, 2 flows, 8 Mbps, 4 s horizon",
        "rounds": rounds,
        "outcomes_identical": identical,
        "clean_seconds": round(best["clean"], 4),
        "empty_plan_seconds": round(best["empty_plan"], 4),
        "empty_plan_overhead_ratio": round(
            best["empty_plan"] / best["clean"], 4
        ),
        "churned": {
            "actions": CHURN_PLAN_ACTIONS,
            "seconds": round(churned_seconds, 4),
            "updates_applied": churned.updates_applied,
            "updates_rejected": churned.updates_rejected,
            "mean_normalized_throughput": round(
                churned.mean_normalized_throughput, 4
            ),
        },
        "apply_throughput": _apply_throughput(),
    }


def check_churn(
    section: dict,
    *,
    max_overhead: float = CHURN_MAX_OVERHEAD,
    min_updates_per_s: float = CHURN_MIN_UPDATES_PER_S,
) -> list[str]:
    """Acceptance gates for the live-reconfiguration machinery.

    Deterministic gate (exact on any machine): the empty-plan outcome
    must be byte-identical to the clean run's.  Wall gates (same-machine
    clocks): the empty plan may cost at most ``max_overhead`` x the
    clean run, and transactional update throughput must stay above
    ``min_updates_per_s``.
    """
    failures = []
    if not section["outcomes_identical"]:
        failures.append(
            "churn: empty ChurnPlan() outcome differs from the clean "
            "churn=None run — inert plans are not free"
        )
    ratio = section["empty_plan_overhead_ratio"]
    if ratio > max_overhead:
        failures.append(
            f"churn: empty-plan wall overhead {ratio:.4f}x above the "
            f"{max_overhead}x ceiling (clean {section['clean_seconds']}s, "
            f"empty {section['empty_plan_seconds']}s)"
        )
    throughput = section["apply_throughput"]["updates_per_second"]
    if throughput < min_updates_per_s:
        failures.append(
            f"churn: {throughput:.0f} transactional updates/s below the "
            f"{min_updates_per_s:.0f}/s floor"
        )
    churned = section["churned"]
    if churned["updates_applied"] + churned["updates_rejected"] != churned["actions"]:
        failures.append(
            f"churn: churned cell applied {churned['updates_applied']} + "
            f"rejected {churned['updates_rejected']} != plan's "
            f"{churned['actions']} actions — driver lost updates"
        )
    return failures


def _fleet_cell(
    aggregates: int, shards: int, *, isolate: bool = False
) -> dict:
    """One full fleet run summarized as the JSON cell the section stores."""
    spec = FleetSpec(aggregates=aggregates, seed=FLEET_SEED)
    result = run_fleet(spec, shards=shards, isolate=isolate)
    return fleet_cell_json(result)


def fleet_section(headline: dict | None = None) -> dict:
    """The sharded-fleet section: invariance + shard-scaling cells.

    ``headline`` carries the big committed run (e.g. 10^5 aggregates over
    100 shards) forward from the previous ``BENCH_fleet.json``; it is too
    expensive to re-run on every check and is regenerated explicitly with
    ``--fleet-headline``.
    """
    baseline = _fleet_cell(**FLEET_BASELINE)
    invariance = _fleet_cell(**FLEET_INVARIANCE)
    scaled = _fleet_cell(**FLEET_SCALED)
    section = {
        "unit": "summed-CPU us/packet over merged arrived packets",
        "workload": "full end-to-end fleet sims (repro.fleet), seed "
        f"{FLEET_SEED}, bcpqp",
        "cells": {
            "baseline": baseline,
            "invariance": invariance,
            "scaled": scaled,
        },
        "digests_match": baseline["digest"] == invariance["digest"],
        "shard_efficiency": round(
            baseline["us_per_packet"] / scaled["us_per_packet"], 3
        ),
        "scaled_us_multiple": round(
            scaled["us_per_packet"] / baseline["us_per_packet"], 3
        ),
    }
    if headline is not None:
        section["headline"] = headline
        section["headline_us_multiple"] = round(
            headline["us_per_packet"] / baseline["us_per_packet"], 3
        )
    return section


def run_fleet_headline(aggregates: int) -> dict:
    """The big committed fleet run: one shard per ~1000 aggregates, each
    in a disposable supervised process (exact per-shard peak RSS)."""
    shards = max(1, aggregates // 1000)
    return _fleet_cell(aggregates, shards, isolate=True)


def check_fleet(section: dict, *, min_efficiency: float) -> list[str]:
    """Regression gates for the sharded fleet.

    Deterministic gate (exact on any machine): the 4-shard N=1000 merge
    must be byte-identical to the unsharded baseline (digest equality
    over the full per-aggregate columns).  Wall gates (same-machine
    clocks, both sides measured in this run): shard-scaling efficiency
    >= ``min_efficiency``, and the committed headline us/packet within
    ``FLEET_US_MAX_MULTIPLE`` x of the fresh baseline.
    """
    failures = []
    cells = section["cells"]
    if not section["digests_match"]:
        failures.append(
            "fleet: sharded digest "
            f"{cells['invariance']['digest'][:16]} != unsharded baseline "
            f"{cells['baseline']['digest'][:16]} — shard-count invariance "
            "broken"
        )
    if section["shard_efficiency"] < min_efficiency:
        failures.append(
            f"fleet: shard-scaling efficiency {section['shard_efficiency']}"
            f" below the {min_efficiency} floor (baseline "
            f"{cells['baseline']['us_per_packet']:.2f} us/pkt, scaled "
            f"{cells['scaled']['us_per_packet']:.2f} us/pkt)"
        )
    headline = section.get("headline")
    if headline is None:
        failures.append(
            "fleet: no committed headline run (generate one with "
            "--fleet-headline 100000)"
        )
    else:
        multiple = section["headline_us_multiple"]
        if multiple > FLEET_US_MAX_MULTIPLE:
            failures.append(
                f"fleet: headline ({headline['aggregates']} aggregates) "
                f"us/packet {headline['us_per_packet']:.2f} is "
                f"{multiple}x the N=1000 baseline, above the "
                f"{FLEET_US_MAX_MULTIPLE}x bound"
            )
    return failures


def simulator_events_per_second(rounds: int) -> dict[str, float]:
    """Median events/sec for the event-loop microbenchmark workloads."""
    workloads = {
        "timer_chain": bench_sim_core.run_timer_chain,
        "timer_fan": bench_sim_core.run_timer_fan,
        "cancel_mix": bench_sim_core.run_cancel_mix,
        "soft_reschedule": bench_sim_core.run_soft_reschedule,
    }
    out = {}
    for name, fn in workloads.items():
        fn()  # warm-up
        samples = []
        for _ in range(rounds):
            start = time.perf_counter()
            events = fn()
            samples.append(events / (time.perf_counter() - start))
        out[name] = round(statistics.median(samples))
    return out


def build_report(rounds: int) -> dict:
    return {
        "schema": "repro-bench/1",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "rounds": rounds,
        "modeled_cycles_per_packet": modeled_cycles(),
        "hot_path": {
            "unit": "seconds/packet",
            "batch_packets": BATCH,
            "schemes": hot_path_seconds_per_packet(rounds),
        },
        "simulator": {
            "unit": "events/second",
            "workloads": simulator_events_per_second(rounds),
        },
        # Supervised-sweep fault accounting for the cells this report
        # ran: a bench result computed through retries is a flaky cell
        # worth investigating even when the numbers look fine.
        "sweep_faults": session_stats(),
    }


def _print_sweep_faults() -> None:
    stats = session_stats()
    print(
        f"  sweep      retries={stats['retries']} "
        f"crashes={stats['crashes']} timeouts={stats['timeouts']} "
        f"failed-cells={stats['failed_cells']} "
        f"replayed={stats['replayed']}"
    )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", "-o",
        default=str(Path(__file__).parent / "BENCH_fig5.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--rounds", type=int, default=5,
        help="timing rounds per measurement (median is reported)",
    )
    parser.add_argument(
        "--baseline", metavar="JSON", default=None,
        help="a previous report to embed under 'baseline', with "
        "events/sec speedup ratios computed against it",
    )
    parser.add_argument(
        "--scaling-output",
        default=str(Path(__file__).parent / "BENCH_scaling.json"),
        help="where to write the scaling-section JSON",
    )
    parser.add_argument(
        "--eventloop-output",
        default=str(Path(__file__).parent / "BENCH_eventloop.json"),
        help="where to write the event-engine-section JSON",
    )
    parser.add_argument(
        "--batch-output",
        default=str(Path(__file__).parent / "BENCH_batch.json"),
        help="where to write the batched-packet-path-section JSON",
    )
    parser.add_argument(
        "--impair-output",
        default=str(Path(__file__).parent / "BENCH_impair.json"),
        help="where to write the impairment-machinery-section JSON",
    )
    parser.add_argument(
        "--churn-output",
        default=str(Path(__file__).parent / "BENCH_churn.json"),
        help="where to write the live-reconfiguration-section JSON",
    )
    parser.add_argument(
        "--fleet-output",
        default=str(Path(__file__).parent / "BENCH_fleet.json"),
        help="where to write the sharded-fleet-section JSON",
    )
    parser.add_argument(
        "--fleet-headline", type=int, default=None, metavar="N",
        help="re-run the committed fleet headline with N aggregates "
        "(one shard per ~1000, supervised; expensive — default: carry "
        "the committed headline forward)",
    )
    parser.add_argument(
        "--check-min-efficiency", type=float, default=FLEET_MIN_EFFICIENCY,
        help="required fleet shard-scaling efficiency (baseline us/pkt "
        f"over 4x-fleet sharded us/pkt; default {FLEET_MIN_EFFICIENCY})",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="run only the scaling sweep, event-engine, batch, impair "
        "and fleet sections; fail if seconds/packet at N=1000 exceeds "
        "--check-multiple times the N=10 value or any event-engine, "
        "batch, impair or fleet gate regresses",
    )
    parser.add_argument(
        "--check-multiple", type=float, default=3.0,
        help="allowed N=1000 / N=10 seconds-per-packet ratio (default 3.0)",
    )
    parser.add_argument(
        "--check-min-speedup", type=float, default=2.0,
        help="required bcpqp batched us/packet speedup vs the committed "
        "pre-batching reference clock (default 2.0)",
    )
    args = parser.parse_args(argv)
    if args.rounds < 1:
        parser.error("--rounds must be at least 1")
    if args.check_multiple <= 0:
        parser.error("--check-multiple must be positive")
    if args.check_min_speedup <= 0:
        parser.error("--check-min-speedup must be positive")
    if args.check_min_efficiency <= 0:
        parser.error("--check-min-efficiency must be positive")

    if args.check:
        scaling = scaling_section(args.rounds)
        _write_scaling(args.scaling_output, args.rounds, scaling)
        _print_scaling(scaling)
        failures = check_scaling(scaling, args.check_multiple)
        eventloop = eventloop_section()
        _write_eventloop(args.eventloop_output, eventloop)
        _print_eventloop(eventloop)
        failures += check_eventloop(eventloop)
        batch = batch_section(args.rounds)
        _write_batch(args.batch_output, batch)
        _print_batch(batch)
        failures += check_batch(batch, min_speedup=args.check_min_speedup)
        impair = impair_section(args.rounds)
        _write_impair(args.impair_output, impair)
        _print_impair(impair)
        failures += check_impair(impair)
        churn = churn_section(args.rounds)
        _write_churn(args.churn_output, churn)
        _print_churn(churn)
        failures += check_churn(churn)
        fleet = fleet_section(headline=_fleet_headline(args))
        _write_fleet(args.fleet_output, fleet)
        _print_fleet(fleet)
        failures += check_fleet(
            fleet, min_efficiency=args.check_min_efficiency
        )
        if failures:
            for failure in failures:
                print(f"FAIL {failure}")
            raise SystemExit(1)
        print(
            f"scaling + eventloop + batch + impair + churn + fleet "
            f"checks passed "
            f"(multiple={args.check_multiple}, "
            f"min-speedup={args.check_min_speedup}, "
            f"min-efficiency={args.check_min_efficiency})"
        )
        return

    report = build_report(args.rounds)
    if args.baseline:
        baseline = json.loads(Path(args.baseline).read_text())
        report["baseline"] = baseline
        old = baseline.get("simulator", {}).get("workloads", {})
        new = report["simulator"]["workloads"]
        report["simulator"]["speedup_vs_baseline"] = {
            name: round(new[name] / old[name], 3)
            for name in new if old.get(name)
        }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    for scheme, cycles in report["modeled_cycles_per_packet"].items():
        print(f"  cycles/pkt {scheme:12s} {cycles:8.1f}")
    for scheme, secs in report["hot_path"]["schemes"].items():
        print(f"  hot path   {scheme:12s} {secs * 1e6:8.2f} us/pkt")
    for name, eps in report["simulator"]["workloads"].items():
        print(f"  sim        {name:12s} {eps:8.0f} events/s")
    _print_sweep_faults()
    scaling = scaling_section(args.rounds)
    _write_scaling(args.scaling_output, args.rounds, scaling)
    _print_scaling(scaling)
    eventloop = eventloop_section()
    _write_eventloop(args.eventloop_output, eventloop)
    _print_eventloop(eventloop)
    batch = batch_section(args.rounds)
    _write_batch(args.batch_output, batch)
    _print_batch(batch)
    impair = impair_section(args.rounds)
    _write_impair(args.impair_output, impair)
    _print_impair(impair)
    churn = churn_section(args.rounds)
    _write_churn(args.churn_output, churn)
    _print_churn(churn)
    fleet = fleet_section(headline=_fleet_headline(args))
    _write_fleet(args.fleet_output, fleet)
    _print_fleet(fleet)


def _fleet_headline(args: argparse.Namespace) -> dict | None:
    """The headline cell: freshly run with ``--fleet-headline N``, else
    carried forward from the committed ``BENCH_fleet.json``."""
    if args.fleet_headline is not None:
        if args.fleet_headline < 1000:
            raise SystemExit("--fleet-headline needs at least 1000 aggregates")
        print(
            f"running fleet headline: {args.fleet_headline} aggregates "
            f"over {max(1, args.fleet_headline // 1000)} shards ..."
        )
        return run_fleet_headline(args.fleet_headline)
    path = Path(args.fleet_output)
    if not path.exists():
        return None
    try:
        previous = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    return previous.get("fleet", {}).get("headline")


def _write_fleet(path: str, section: dict) -> None:
    document = {
        "schema": "repro-bench-fleet/1",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "fleet": section,
    }
    Path(path).write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {path}")


def _print_fleet(section: dict) -> None:
    cells = dict(section["cells"])
    headline = section.get("headline")
    if headline is not None:
        cells["headline"] = headline
    for name, cell in cells.items():
        print(
            f"  fleet      {name:10s} N={cell['aggregates']:>6d} "
            f"K={cell['shards']:>3d} "
            f"{cell['us_per_packet']:8.2f} us/pkt  "
            f"rss {cell['peak_rss_bytes'] / 1e6:6.1f} MB  "
            f"digest {cell['digest'][:12]}"
        )
    print(
        f"  fleet      digests-match={section['digests_match']} "
        f"efficiency={section['shard_efficiency']:.3f} "
        f"scaled-multiple={section['scaled_us_multiple']:.3f}"
        + (
            f" headline-multiple={section['headline_us_multiple']:.3f}"
            if headline is not None
            else ""
        )
    )


def _write_churn(path: str, section: dict) -> None:
    document = {
        "schema": "repro-bench-churn/1",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "churn": section,
    }
    Path(path).write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {path}")


def _print_churn(section: dict) -> None:
    churned = section["churned"]
    throughput = section["apply_throughput"]
    print(
        f"  churn      clean {section['clean_seconds']:7.4f}s  "
        f"empty-plan {section['empty_plan_seconds']:7.4f}s  "
        f"overhead {section['empty_plan_overhead_ratio']:6.4f}x  "
        f"identical={section['outcomes_identical']}"
    )
    print(
        f"  churn      churned({churned['actions']} actions) "
        f"{churned['seconds']:7.4f}s  "
        f"applied {churned['updates_applied']}  "
        f"rejected {churned['updates_rejected']}  "
        f"apply-throughput {throughput['updates_per_second']:8.0f}/s"
    )


def _write_impair(path: str, section: dict) -> None:
    document = {
        "schema": "repro-bench-impair/1",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "impair": section,
    }
    Path(path).write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {path}")


def _print_impair(section: dict) -> None:
    enabled = section["enabled"]
    print(
        f"  impair     clean {section['clean_seconds']:7.4f}s  "
        f"disabled {section['disabled_seconds']:7.4f}s  "
        f"overhead {section['disabled_overhead_ratio']:6.4f}x  "
        f"identical={section['outcomes_identical']}"
    )
    print(
        f"  impair     enabled(loss={enabled['spec']['loss']}, "
        f"jitter={enabled['spec']['jitter']}) {enabled['seconds']:7.4f}s  "
        f"drop-rate {enabled['drop_rate']:.4f}"
    )


def _write_batch(path: str, section: dict) -> None:
    document = {
        "schema": "repro-bench-batch/1",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "batch": section,
    }
    Path(path).write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {path}")


def _print_batch(section: dict) -> None:
    for scheme, cell in section["schemes"].items():
        print(
            f"  batch      {scheme:8s} "
            f"batch=1 {cell['us_per_packet_batch1']:7.2f} us/pkt  "
            f"batched {cell['us_per_packet_batched']:7.2f} us/pkt  "
            f"vs-ref {cell['speedup_vs_reference']:5.2f}x  "
            f"same-box {cell['speedup_same_machine']:5.2f}x"
        )


def _write_eventloop(path: str, section: dict) -> None:
    document = {
        "schema": "repro-bench-eventloop/1",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "eventloop": section,
    }
    Path(path).write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {path}")


def _print_eventloop(section: dict) -> None:
    for scheme, cell in section["schemes"].items():
        push_ratio = cell.get("heap_push_reduction_vs_pre_pr")
        speedup = cell.get("speedup_vs_pre_pr")
        ratios = ""
        if push_ratio is not None:
            ratios = f"  pushes -{push_ratio:.2f}x  wall +{speedup:.2f}x"
        print(
            f"  eventloop  {scheme:8s} "
            f"{cell['heap_pushes_per_packet']:7.3f} pushes/pkt  "
            f"{cell['events_per_packet']:7.3f} ev/pkt  "
            f"peak {cell['peak_heap_size']:>5d}  "
            f"{cell['us_per_packet']:8.2f} us/pkt{ratios}"
        )


def _write_scaling(path: str, rounds: int, scaling: dict) -> None:
    document = {
        "schema": "repro-bench-scaling/1",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "rounds": rounds,
        "scaling": scaling,
    }
    Path(path).write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {path}")


def _print_scaling(scaling: dict) -> None:
    for scheme, per_n in scaling["schemes"].items():
        for n, cell in per_n.items():
            print(
                f"  scaling    {scheme:6s} N={n:>4s} "
                f"{cell['seconds_per_packet'] * 1e6:8.2f} us/pkt  "
                f"{cell['modeled_cycles_per_packet']:8.1f} cycles/pkt"
            )


if __name__ == "__main__":
    main()
