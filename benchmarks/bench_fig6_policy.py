"""Figure 6 benchmark: policy enforcement (fairness, weighted, nested)."""

from conftest import run_once

from repro.experiments import fig6_policy
from repro.units import mbps
from repro.workload.aggregates import Section61Config


def test_fig6_policy(benchmark):
    config = fig6_policy.Config(
        workload=Section61Config(
            num_aggregates=4,
            rates=(mbps(7.5), mbps(25.0)),
            flows_per_aggregate=4,
            horizon=10.0,
            seed=11,
        ),
        warmup=3.0,
        packets_per_weight=400,
        weighted_horizon=30.0,
        nested_horizon=15.0,
    )
    result = run_once(benchmark, fig6_policy.run, config)

    # 6a: BC-PQP's fairness tracks the shaper's and beats the policer's.
    mean = {s: m for s, (_p10, _p50, m) in result.fairness_cdf.items()}
    assert mean["bcpqp"] > mean["policer"]
    assert abs(mean["bcpqp"] - mean["shaper"]) < 0.1

    # 6b/6c: weight-proportional flows complete together under BC-PQP;
    # FairPolicer cannot do weighted sharing.
    bc_spread, bc_wj = result.weighted["bcpqp"]
    fp_spread, fp_wj = result.weighted["fairpolicer"]
    assert bc_spread < 3.0
    assert bc_wj > 0.95
    assert fp_spread > 2 * bc_spread or fp_wj < bc_wj - 0.2

    # 6d: strict priority holds while the high-priority group is active.
    assert result.nested_high_share > 0.9
    assert result.nested_low_share_when_high_active < 0.1
