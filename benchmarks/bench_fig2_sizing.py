"""Figure 2 benchmark: phantom-queue sizing for a Reno flow."""

from conftest import run_once

from repro.experiments import fig2_sizing
from repro.units import to_mbps


def test_fig2_sizing(benchmark):
    config = fig2_sizing.Config(
        buffer_kb=(100, 500, 1000, 4000), horizon=30.0, warmup=8.0)
    result = run_once(benchmark, fig2_sizing.run, config)

    target = to_mbps(config.rate)
    avg = {kb: vals[0] for kb, vals in result.by_buffer.items()}
    drop = {kb: vals[2] for kb, vals in result.by_buffer.items()}

    # Below the Appendix-A minimum (~579 KB): under-enforcement.
    assert avg[100] < 0.9 * target
    # At the paper's 1000 KB: correct enforcement...
    assert abs(avg[1000] - target) < 0.07 * target
    # ...and "a 4000 KB queue does as good a rate enforcement as 1000 KB".
    assert abs(avg[4000] - target) < 0.07 * target
    # Larger queues only buy more drops.
    assert drop[4000] > drop[1000] > drop[100]
