"""Extension benchmark: ECN marking on phantom queues."""

from conftest import run_once

from repro.experiments import ext_ecn


def test_ext_ecn(benchmark):
    config = ext_ecn.Config(horizon=15.0, warmup=5.0)
    result = run_once(benchmark, ext_ecn.run, config)

    plain = result.cells[("pqp", False)]
    marked = result.cells[("pqp", True)]
    # Marking keeps rate and fairness...
    assert abs(marked.mean_normalized - plain.mean_normalized) < 0.05
    assert marked.fairness > 0.95
    # ...while (nearly) eliminating loss and retransmissions.
    assert marked.drop_rate < plain.drop_rate / 5
    assert marked.retransmits < plain.retransmits / 5
    assert marked.marked_packets > 0
