"""Ablation benchmarks for BC-PQP's design choices (DESIGN.md §4 notes).

* **Phantom service discipline** — the fluid (GPS) idealization vs the
  paper's batched-DRR dequeues: end-to-end behaviour should be
  indistinguishable, validating the idealization used by default.
* **Buffer-size insensitivity** — §4's "it does not matter how high a
  value we set for the phantom queue size" once burst control is on
  (whereas plain PQP's burst grows with the queue).
* **Burst-control thresholds** — theta+/T govern the burst bound
  (X+ = theta+ r*_i T): larger budgets trade burst for utilization.
"""

import random

from conftest import run_once

from repro import AggregateScenario, FlowSpec, Simulator, make_limiter
from repro.metrics import (
    aggregate_throughput_series,
    jain_index,
    per_slot_throughput_series,
)
from repro.units import mbps, ms


def _run(scheme, *, horizon=15.0, warmup=5.0, seed=2, **kwargs):
    sim = Simulator()
    limiter = make_limiter(sim, scheme, rate=mbps(10), num_queues=4,
                           max_rtt=ms(50), **kwargs)
    specs = [FlowSpec(slot=i, cc=cc, rtt=ms(10 + 10 * i))
             for i, cc in enumerate(["reno", "cubic", "bbr", "vegas"])]
    scenario = AggregateScenario(sim, limiter=limiter, specs=specs,
                                 rng=random.Random(seed), horizon=horizon)
    scenario.run()
    agg = aggregate_throughput_series(scenario.trace.records, window=0.25,
                                      start=warmup, end=horizon)
    slots = per_slot_throughput_series(scenario.trace.records, window=0.25,
                                       start=warmup, end=horizon)
    return {
        "mean": agg.mean() / mbps(10),
        "peak": agg.max() / mbps(10),
        "jain": jain_index([s.mean() for s in slots.values()]),
        "drops": limiter.stats.drop_rate,
    }


def test_ablation_phantom_service(benchmark):
    """Fluid GPS vs quantum DRR phantom service: same end-to-end story."""

    def run_both():
        return {svc: _run("bcpqp", phantom_service=svc)
                for svc in ("fluid", "quantum")}

    results = run_once(benchmark, run_both)
    fluid, quantum = results["fluid"], results["quantum"]
    assert abs(fluid["mean"] - quantum["mean"]) < 0.06
    assert abs(fluid["jain"] - quantum["jain"]) < 0.08
    assert abs(fluid["drops"] - quantum["drops"]) < 0.08


def test_ablation_buffer_insensitivity(benchmark):
    """BC-PQP's behaviour is flat across a 100x buffer range; plain PQP's
    burst grows with the buffer (the §4 auto-sizing claim)."""

    def run_sweep():
        out = {"bcpqp": {}, "pqp": {}}
        for mult in (1.0, 10.0, 100.0):
            base = 75_000.0  # ~ the Reno minimum for these parameters
            out["bcpqp"][mult] = _run("bcpqp", queue_bytes=base * mult)
            out["pqp"][mult] = _run("pqp", queue_bytes=base * mult)
        return out

    results = run_once(benchmark, run_sweep)
    bc = results["bcpqp"]
    # Enforcement accuracy flat to within a few percent across 100x.
    means = [bc[m]["mean"] for m in (1.0, 10.0, 100.0)]
    assert max(means) - min(means) < 0.08
    # Burst and fairness stay controlled at every size.
    assert all(bc[m]["peak"] < 1.45 for m in (1.0, 10.0, 100.0))
    assert all(bc[m]["jain"] > 0.85 for m in (1.0, 10.0, 100.0))
    # Plain PQP's drop behaviour swings with the buffer size (the sizing
    # conundrum §3.5 describes: small queues starve, huge queues absorb a
    # multi-second slow-start backlog), while BC-PQP's stays put.
    pqp = results["pqp"]
    pqp_spread = max(p["drops"] for p in pqp.values()) - \
        min(p["drops"] for p in pqp.values())
    bc_spread = max(b["drops"] for b in bc.values()) - \
        min(b["drops"] for b in bc.values())
    assert bc_spread < pqp_spread + 0.05


def test_ablation_burst_thresholds(benchmark):
    """theta+ sweep: looser thresholds allow larger bursts."""

    def run_sweep():
        return {tp: _run("bcpqp", theta_plus=tp, horizon=20.0)
                for tp in (1.5, 3.0, 6.0)}

    results = run_once(benchmark, run_sweep)
    # Burst (peak normalized throughput) grows with theta+.
    assert results[6.0]["peak"] >= results[1.5]["peak"] - 0.05
    # Rate enforcement stays correct at the paper's default.
    assert results[1.5]["mean"] > 0.9
