"""Figure 1 benchmark: the motivating shaper/policer trade-off."""

from conftest import run_once

from repro.experiments import fig1_motivation


def test_fig1_motivation(benchmark):
    config = fig1_motivation.Config(horizon=10.0, warmup=4.0)
    result = run_once(benchmark, fig1_motivation.run, config)

    # 1a: the shaper enforces fairness; the policer does not — and the
    # shaper pays for it with far more CPU work per packet.
    assert result.fairness["shaper"] > 0.95
    assert result.fairness["policer"] < 0.8
    assert result.cycles_per_packet["shaper"] > \
        5 * result.cycles_per_packet["policer"]

    # 1b: bigger buckets improve the average rate but inflate the peak.
    mults = sorted(result.bucket_tradeoff)
    avg_small, peak_small = result.bucket_tradeoff[mults[0]]
    avg_large, peak_large = result.bucket_tradeoff[mults[-1]]
    assert avg_small < 0.95          # small bucket under-enforces
    assert avg_large > 0.95          # large bucket reaches the rate
    assert peak_large > peak_small   # ...at the cost of burst
