"""Figure 9 benchmark: the BBR video's share under each scheme."""

from conftest import run_once

from repro.experiments import fig9_video_timeseries


def test_fig9_video_timeseries(benchmark):
    config = fig9_video_timeseries.Config(chunks=15, horizon=100.0)
    result = run_once(benchmark, fig9_video_timeseries.run, config)

    # Through the policer the BBR video hogs most of the bandwidth
    # (Appendix B); BC-PQP pins it at its fair half.
    assert result.video_share["policer"] > 0.75
    assert 0.35 < result.video_share["bcpqp"] < 0.65
    # The DRR shaper also shares fairly (at the cost of queueing delay).
    assert 0.35 < result.video_share["shaper"] < 0.65
