"""Shared benchmark helpers.

Every figure benchmark runs its (scaled-down) experiment exactly once via
``benchmark.pedantic`` — the wall time recorded is the cost of regenerating
that figure — and then asserts the figure's qualitative *shape* (who wins,
in which direction) so a regression in the algorithms fails the bench.
"""


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` a single time under pytest-benchmark and return its value."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
