"""Figure 3 benchmark: burst control across a secondary bottleneck."""

from conftest import run_once

from repro.experiments import fig3_secondary_bottleneck


def test_fig3_secondary_bottleneck(benchmark):
    config = fig3_secondary_bottleneck.Config(horizon=25.0, warmup=8.0)
    result = run_once(benchmark, fig3_secondary_bottleneck.run, config)

    # BC-PQP's clipped bursts barely touch the 8.5 Mbps hop; PQP's
    # O(BDP^2) queues hammer it.
    assert result.bottleneck_drops["pqp"] > \
        3 * max(result.bottleneck_drops["bcpqp"], 1)
    # Short-timescale fairness is better preserved under BC-PQP.
    assert result.mean_window_fairness["bcpqp"] >= \
        result.mean_window_fairness["pqp"] - 0.02
    assert result.mean_window_fairness["bcpqp"] > 0.85
