"""Figure 7 benchmark: application QoE (video + web) under enforcement."""

from conftest import run_once

from repro.experiments import fig7_applications


def test_fig7_applications(benchmark):
    config = fig7_applications.Config(
        video_chunks=12, web_pages=8, horizon=80.0)
    result = run_once(benchmark, fig7_applications.run, config)

    # 7a: BC-PQP shares the 3 Mbps fairly between the video and the rest;
    # the status-quo policer lets the BBR video hog the link.
    for service in ("youtube", "netflix"):
        assert result.video[("bcpqp", service)].fairness > 0.95
        assert result.video[("bcpqp", service)].average_quality > 1.0
    assert result.video[("policer", "youtube")].fairness < 0.8

    # 7b: with a non-yielding bulk download, the status-quo schemes starve
    # the web class; weighted BC-PQP keeps pages loading.
    bc_p50, _bc_p90, bc_pages = result.web["bcpqp"]
    _pol_p50, _pol_p90, pol_pages = result.web["policer"]
    assert bc_pages >= 6
    assert pol_pages < bc_pages / 2
    assert bc_p50 < 15.0
