"""Appendix A benchmark: the Reno phantom-buffer bound, empirically."""

from conftest import run_once

from repro.experiments import appendix_a
from repro.units import mbps, ms


def test_appendix_a_bound(benchmark):
    config = appendix_a.Config(
        points=((mbps(10), ms(100)), (mbps(25), ms(50))),
        multipliers=(0.25, 1.0, 4.0),
        horizon=30.0,
        warmup=8.0,
    )
    results = run_once(benchmark, appendix_a.run, config)

    for point in results:
        # Below the bound: clear under-enforcement; at/above: near-exact.
        assert point.achieved[0.25] < 0.93
        assert point.achieved[1.0] > 0.93
        assert point.achieved[4.0] > 0.95
        assert point.achieved[0.25] < point.achieved[1.0]
        # Steady-state oscillation stays near the analytic [2r/3, 4r/3].
        p10, p90 = point.oscillation
        assert 0.55 < p10 < 1.0
        assert 1.0 < p90 < 1.45
