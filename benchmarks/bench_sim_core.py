"""Simulator event-loop microbenchmarks (events/sec).

These time the discrete-event core itself, independent of any TCP or
limiter logic: a self-rescheduling timer chain (the pure pop/push cycle),
a fan of interleaved timers (deep heap, realistic sift costs), and a
cancellation-heavy mix (lazy-deletion sweep cost).  ``benchmarks/report.py``
converts the same workloads into an events/sec figure for
``BENCH_fig5.json``.
"""

from repro.sim.simulator import Simulator

CHAIN_EVENTS = 20_000
FAN_TIMERS = 64
FAN_EVENTS = 20_000
CANCEL_EVENTS = 20_000


def run_timer_chain(n: int = CHAIN_EVENTS) -> int:
    """One self-rescheduling timer: the minimal pop/push/fire cycle."""
    sim = Simulator()
    remaining = n

    def tick() -> None:
        nonlocal remaining
        remaining -= 1
        if remaining:
            sim.schedule(1e-4, tick)

    sim.schedule(0.0, tick)
    sim.run()
    return sim.events_processed


def run_timer_fan(n: int = FAN_EVENTS, timers: int = FAN_TIMERS) -> int:
    """Many interleaved periodic timers: a deep heap with real sift work."""
    sim = Simulator()
    remaining = n

    def tick(period: float) -> None:
        nonlocal remaining
        remaining -= 1
        if remaining > 0:
            sim.schedule(period, tick, period)

    for i in range(timers):
        # Distinct, non-harmonic periods keep the heap order non-trivial.
        sim.schedule(0.0, tick, 1e-4 * (1 + i / timers))
    sim.run()
    return sim.events_processed


def run_cancel_mix(n: int = CANCEL_EVENTS) -> int:
    """Schedule-then-cancel half the events: the lazy-deletion sweep."""
    sim = Simulator()
    remaining = n

    def tick() -> None:
        nonlocal remaining
        remaining -= 1
        doomed = sim.schedule(2e-4, tick)
        sim.cancel(doomed)
        if remaining:
            sim.schedule(1e-4, tick)

    sim.schedule(0.0, tick)
    sim.run()
    return sim.events_processed


def test_sim_timer_chain(benchmark):
    assert benchmark(run_timer_chain) == CHAIN_EVENTS


def test_sim_timer_fan(benchmark):
    # Timers already in the heap when the budget hits zero still fire.
    assert benchmark(run_timer_fan) == FAN_EVENTS + FAN_TIMERS - 1


def test_sim_cancel_mix(benchmark):
    assert benchmark(run_cancel_mix) == CANCEL_EVENTS
