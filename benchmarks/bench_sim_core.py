"""Simulator event-loop microbenchmarks (events/sec).

These time the discrete-event core itself, independent of any TCP or
limiter logic: a self-rescheduling timer chain (the pure pop/push cycle),
a fan of interleaved timers (deep heap, realistic sift costs), and a
cancellation-heavy mix (lazy-deletion sweep cost).  ``benchmarks/report.py``
converts the same workloads into an events/sec figure for
``BENCH_fig5.json``.

``run_eventloop_cell`` is the event-engine section's workload: one
saturated fig5 cell run end-to-end, reporting the engine's own counters
(events/packet, heap pushes/packet, peak heap size) plus wall us/packet.
``report.py`` turns it into ``BENCH_eventloop.json`` and its ``--check``
regression gate.
"""

import dataclasses
import time

from repro.sim.simulator import Simulator
from repro.sim.timer import Timer

CHAIN_EVENTS = 20_000
FAN_TIMERS = 64
FAN_EVENTS = 20_000
CANCEL_EVENTS = 20_000
RESCHEDULE_EVENTS = 20_000

#: The schemes measured by the event-engine section (fig5 grid order).
EVENTLOOP_SCHEMES = ("bcpqp", "pqp", "shaper", "policer")


def run_timer_chain(n: int = CHAIN_EVENTS) -> int:
    """One self-rescheduling timer: the minimal pop/push/fire cycle."""
    sim = Simulator()
    remaining = n

    def tick() -> None:
        nonlocal remaining
        remaining -= 1
        if remaining:
            sim.schedule(1e-4, tick)

    sim.schedule(0.0, tick)
    sim.run()
    return sim.events_processed


def run_timer_fan(n: int = FAN_EVENTS, timers: int = FAN_TIMERS) -> int:
    """Many interleaved periodic timers: a deep heap with real sift work."""
    sim = Simulator()
    remaining = n

    def tick(period: float) -> None:
        nonlocal remaining
        remaining -= 1
        if remaining > 0:
            sim.schedule(period, tick, period)

    for i in range(timers):
        # Distinct, non-harmonic periods keep the heap order non-trivial.
        sim.schedule(0.0, tick, 1e-4 * (1 + i / timers))
    sim.run()
    return sim.events_processed


def run_cancel_mix(n: int = CANCEL_EVENTS) -> int:
    """Schedule-then-cancel half the events: the lazy-deletion sweep."""
    sim = Simulator()
    remaining = n

    def tick() -> None:
        nonlocal remaining
        remaining -= 1
        doomed = sim.schedule(2e-4, tick)
        sim.cancel(doomed)
        if remaining:
            sim.schedule(1e-4, tick)

    sim.schedule(0.0, tick)
    sim.run()
    return sim.events_processed


def run_soft_reschedule(n: int = RESCHEDULE_EVENTS) -> int:
    """The per-ACK pattern soft timers optimize: a timer pushed out on
    every event, firing only occasionally.  Under cancel+push engines
    this is 2 heap ops per tick; a soft timer makes it ~0."""
    sim = Simulator()
    remaining = n
    rto = Timer(sim, lambda: None)

    def tick() -> None:
        nonlocal remaining
        remaining -= 1
        rto.schedule_after(1.0)  # pushed out again before it ever fires
        if remaining:
            sim.schedule(1e-4, tick)

    sim.schedule(0.0, tick)
    sim.run(until=n * 1e-4 + 1e-3)
    return n - remaining


def run_eventloop_cell(
    scheme: str, horizon: float | None = None, batch: int | None = None
) -> dict:
    """One saturated fig5 cell end-to-end, instrumented by the engine's
    own counters.  Deterministic except for ``wall_seconds``.  ``batch``
    is the delivery batch limit (``None`` = unbounded batched engine,
    ``1`` = the legacy per-packet path)."""
    from repro.experiments import fig5_efficiency
    from repro.runner.aggregate import build_scenario

    config = fig5_efficiency.Config()
    if horizon is not None:
        config = dataclasses.replace(config, horizon=horizon)
    cell = fig5_efficiency.grid(config)[
        list(fig5_efficiency.SCHEMES).index(scheme)
    ]
    sim = Simulator(batch_limit=batch)
    limiter, scenario = build_scenario(cell, sim)
    start = time.perf_counter()
    scenario.run()
    wall = time.perf_counter() - start
    packets = limiter.stats.arrived_packets
    return {
        "arrived_packets": packets,
        "events_per_packet": round(sim.events_processed / packets, 4),
        "heap_pushes_per_packet": round(sim.heap_pushes / packets, 4),
        "peak_heap_size": sim.peak_heap_size,
        "cancelled_backlog_hwm": sim.cancelled_backlog_hwm,
        "inline_advances": sim.inline_advances,
        "batched_deliveries": sim.batched_deliveries,
        "wall_seconds": wall,
        "us_per_packet": round(wall / packets * 1e6, 2),
    }


def test_sim_timer_chain(benchmark):
    assert benchmark(run_timer_chain) == CHAIN_EVENTS


def test_sim_timer_fan(benchmark):
    # Timers already in the heap when the budget hits zero still fire.
    assert benchmark(run_timer_fan) == FAN_EVENTS + FAN_TIMERS - 1


def test_sim_cancel_mix(benchmark):
    assert benchmark(run_cancel_mix) == CANCEL_EVENTS


def test_sim_soft_reschedule(benchmark):
    assert benchmark(run_soft_reschedule) == RESCHEDULE_EVENTS
