"""Figure 5 benchmark: CPU efficiency of the schemes.

Two complementary measurements:

* the modeled cycles-per-packet from the experiment harness (a single
  pedantic round), asserting the paper's ranking and rough ratios;
* real wall-clock microbenchmarks of each limiter's packet-processing hot
  path, for performance tracking of this implementation.  NOTE: Python
  wall time does *not* reproduce the paper's CPU ranking — the shaper's
  deque operations run in C while the phantom drain arithmetic runs in
  Python bytecode, whereas on the paper's DPDK middlebox the shaper's
  costs are DRAM round-trips and timer interrupts.  The modeled cycle
  counts above are the Figure 5 metric; these timings just keep this
  codebase honest about regressions.
"""

import itertools

from conftest import run_once

from repro.experiments import fig5_efficiency
from repro.net.packet import FlowId, Packet
from repro.net.sink import NullSink
from repro.schemes import make_limiter
from repro.sim.simulator import Simulator
from repro.units import mbps, ms


def test_fig5_modeled_cycles(benchmark):
    config = fig5_efficiency.Config(horizon=8.0, warmup=2.0)
    result = run_once(benchmark, fig5_efficiency.run, config)
    ratios = result.ratio_to("policer")

    # The paper's ranking: shaper >> FP > phantom schemes > policer.
    assert ratios["shaper"] > ratios["fairpolicer"] > 1.0
    assert ratios["shaper"] > ratios["bcpqp"] > 1.0
    # "BC-PQP uses 5-7x fewer CPU cycles per packet [than the shaper]".
    assert result.cycles_per_packet["shaper"] > \
        4 * result.cycles_per_packet["bcpqp"]
    # "...and is marginally costlier than a simple policer" (1.5-2x).
    assert ratios["bcpqp"] < 2.5
    # Batched phantom dequeues keep BC-PQP at or below FP's per-packet cost.
    assert ratios["bcpqp"] <= ratios["fairpolicer"] * 1.1


def _hot_path(scheme):
    """Build a limiter and a saturating arrival closure for timing."""
    sim = Simulator()
    limiter = make_limiter(sim, scheme, rate=mbps(50), num_queues=4,
                           max_rtt=ms(50))
    limiter.connect(NullSink())
    flows = [FlowId(0, i) for i in range(4)]
    counter = itertools.count()

    def process_thousand():
        # Advance time a little per batch so token/drain math runs.
        base = next(counter) * 1000
        for i in range(1000):
            sim._now = (base + i) * 2e-5  # 50k pkt/s arrival clock
            limiter.receive(Packet.data(flows[i % 4], base + i, sim.now))

    return process_thousand


def test_hot_path_policer(benchmark):
    benchmark(_hot_path("policer"))


def test_hot_path_pqp(benchmark):
    benchmark(_hot_path("pqp"))


def test_hot_path_bcpqp(benchmark):
    benchmark(_hot_path("bcpqp"))


def test_hot_path_fairpolicer(benchmark):
    benchmark(_hot_path("fairpolicer"))


def test_hot_path_shaper(benchmark):
    """The shaper's receive() buffers packets and runs dequeue timers
    (the event queue is drained as a real middlebox core would)."""
    sim = Simulator()
    limiter = make_limiter(sim, "shaper", rate=mbps(50), num_queues=4,
                           max_rtt=ms(50))
    limiter.connect(NullSink())
    flows = [FlowId(0, i) for i in range(4)]
    counter = itertools.count()

    def process_thousand():
        base = next(counter) * 1000
        for i in range(1000):
            limiter.receive(Packet.data(flows[i % 4], base + i, sim.now))
        sim.run(until=sim.now + 0.02)

    benchmark(process_thousand)
